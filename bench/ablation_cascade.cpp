// Ablation E10 (extension): temporal blocking — multiple time steps fused
// per DRAM pass. The paper cites this direction ([2] Fu et al., [4] Nacci
// et al.) as complementary to Smache's off-chip optimisation; this bench
// quantifies the combination on our substrate: traffic falls ~1/K with
// fused depth K, on-chip footprint rises ~K, cycles improve modestly
// (compute was already streaming-rate-bound).
//
// Driven by the sweep subsystem: ONE SweepSpec whose `depths` dimension
// spans K = 1..24 expands to the eight configurations and runs on the
// SweepExecutor with golden-reference verification (the "correct" column).
// All depths share the workload-identity seed, so every row processes the
// identical input grid. SMACHE_SWEEP_THREADS overrides the worker count
// (default: all hardware threads; the table is identical for any value).
#include <cstdio>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "sweep/executor.hpp"

int main() {
  std::printf("=== Ablation: temporal blocking (cascade extension) ===\n");
  std::printf("24x24 grid, 4-point stencil, OPEN boundaries, 24 time "
              "steps total\n");
  std::printf("(periodic boundaries cannot be fused within a pass — their "
              "wrap data does not exist yet; see DESIGN.md)\n\n");

  smache::sweep::SweepSpec spec;
  spec.grids = {{24, 24}};
  spec.steps = {24};
  spec.depths = {1, 2, 3, 4, 6, 8, 12, 24};
  spec.stencils = {"vn4"};
  spec.boundaries = {"open"};
  spec.kernels = {"average"};
  spec.inputs = {"random"};

  smache::sweep::ExecutorOptions opts;
  opts.threads = smache::threads_from_env("SMACHE_SWEEP_THREADS", 0);
  opts.verify_reference = true;

  // The warmup column means different things across rows: K=1 runs the
  // per-instance SmacheTop, whose warmup is the static-prefetch phase (0
  // here — open boundaries have nothing to prefetch), while K>1 rows
  // report CascadeTop's pipeline fill (cycle of the first writeback),
  // which grows with K. They are not one curve.
  smache::TextTable t({"fused depth K", "passes", "cycles",
                       "warmup (see note)", "DRAM traffic KiB",
                       "traffic vs K=1", "on-chip window bits", "correct"});
  std::uint64_t base_traffic = 0;
  for (const auto& r : smache::sweep::SweepExecutor(opts).run(spec)) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL %s: %s\n", r.scenario.label.c_str(),
                   r.error.c_str());
      return 1;
    }
    const std::size_t depth = r.scenario.depth;
    if (depth == 1) base_traffic = r.run.dram.total_bytes();
    t.begin_row();
    t.add_cell(static_cast<std::uint64_t>(depth));
    t.add_cell(static_cast<std::uint64_t>(r.scenario.problem.steps / depth));
    t.add_cell(r.run.cycles);
    t.add_cell(r.run.warmup_cycles);
    t.add_cell(static_cast<double>(r.run.dram.total_bytes()) / 1024.0, 1);
    t.add_cell(static_cast<double>(r.run.dram.total_bytes()) /
                   static_cast<double>(base_traffic),
               3);
    t.add_cell(r.run.estimate->r_stream + r.run.estimate->b_stream);
    t.add_cell(std::string(r.reference_match ? "yes" : "NO"));
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("note: warmup is SmacheTop's static-prefetch phase for K=1 "
              "(0 with open boundaries) and CascadeTop's pipeline fill "
              "(first-writeback cycle) for K>1 — two different "
              "quantities, not one curve.\n");
  std::printf("expected shape: traffic scales as 1/K while on-chip bits "
              "scale as K — the classic temporal-blocking trade combined "
              "with Smache's streaming window.\n");
  return 0;
}

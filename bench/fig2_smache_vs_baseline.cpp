// Reproduces Figure 2 of the paper: Smache vs baseline on an 11x11 grid,
// 4-point averaging stencil, circular top/bottom + open left/right
// boundaries, kernel run for 100 work-instances.
//
// Paper reference values (author simulation + Stratix-V synthesis):
//   Cycle-count        : baseline 64001   smache 14039   (ratio 0.219)
//   Freq (MHz)         : baseline 372.9   smache 235.3
//   DRAM Traffic (KB)  : baseline 236.3   smache 95.5    (ratio 0.404)
//   Sim. Exec. Time(us): baseline 171.6   smache 59.7
//   Performance (MOPS) : baseline 282.0   smache 811.2   -> ~2.9x speed-up
//
// We are reproducing SHAPE, not the authors' testbed: cycle counts come
// from our cycle-accurate simulation, frequency from the calibrated timing
// model, traffic from the DRAM model's counters, and the derived rows from
// the same arithmetic the paper uses (time = cycles/fmax, MOPS =
// 4*N*steps/time).
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"

namespace {

smache::grid::Grid<smache::word_t> make_grid(std::size_t h, std::size_t w,
                                             std::uint64_t seed) {
  smache::Rng rng(seed);
  smache::grid::Grid<smache::word_t> g(h, w);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<smache::word_t>(rng.next_below(4096));
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  // `verbose` is a declared boolean flag (it never binds the next token).
  const smache::CliArgs args(argc, argv, {"verbose"});
  if (args.get_bool("verbose", false))
    smache::Log::set_level(smache::LogLevel::Info);
  smache::ProblemSpec problem = smache::ProblemSpec::paper_example();
  problem.height = static_cast<std::size_t>(args.get_int("height", 11));
  problem.width = static_cast<std::size_t>(args.get_int("width", 11));
  problem.steps = static_cast<std::size_t>(args.get_int("steps", 100));

  std::printf("=== Figure 2: Smache vs baseline ===\n");
  std::printf("problem: %s\n\n", problem.describe().c_str());

  const auto init = make_grid(problem.height, problem.width, 0xF16);
  const auto ref = smache::reference_run(problem, init);

  const auto baseline =
      smache::Engine(smache::EngineOptions::baseline()).run(problem, init);
  const auto smache_run =
      smache::Engine(smache::EngineOptions::smache()).run(problem, init);

  // The comparison is only meaningful if both designs computed the right
  // answer; fail loudly otherwise.
  if (!(baseline.output == ref) || !(smache_run.output == ref)) {
    std::fprintf(stderr, "FATAL: design output mismatch vs reference\n");
    return 1;
  }
  std::printf("correctness: both designs match the software reference "
              "bit-exactly\n\n");

  std::printf("%s\n", smache::format_fig2(baseline, smache_run).c_str());

  std::printf("paper reference (for shape comparison):\n");
  std::printf("  cycles  64001 vs 14039  (ratio 0.219)\n");
  std::printf("  freq    372.9 vs 235.3 MHz\n");
  std::printf("  traffic 236.3 vs 95.5 KiB (ratio 0.404)\n");
  std::printf("  time    171.6 vs 59.7 us -> 2.87x speed-up, MOPS 282 vs "
              "811\n\n");

  std::printf("resource note (elaborated): baseline %llu register bits, "
              "%llu BRAM bits; smache %llu register bits, %llu BRAM bits\n",
              static_cast<unsigned long long>(baseline.resources.r_total),
              static_cast<unsigned long long>(baseline.resources.b_total),
              static_cast<unsigned long long>(smache_run.resources.r_total),
              static_cast<unsigned long long>(smache_run.resources.b_total));
  return 0;
}

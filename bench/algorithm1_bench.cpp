// Microbenchmark E7: Algorithm 1 and the planner — the static-analysis
// cost of the paper's §II model, demonstrating it is cheap enough to sit
// inside a design-space-exploration loop (its intended use).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "model/algorithm1.hpp"
#include "model/planner.hpp"

namespace {

smache::model::RangeSpec random_range(smache::Rng& rng, std::size_t n) {
  smache::model::RangeSpec r;
  r.start = 0;
  r.length = 1 + rng.next_below(10000);
  for (std::size_t i = 0; i < n; ++i)
    r.tuple.offsets.push_back(rng.next_in(-100000, 100000));
  std::sort(r.tuple.offsets.begin(), r.tuple.offsets.end());
  r.tuple.offsets.erase(
      std::unique(r.tuple.offsets.begin(), r.tuple.offsets.end()),
      r.tuple.offsets.end());
  return r;
}

void BM_CalcOptSz_Interval(benchmark::State& state) {
  smache::Rng rng(7);
  const auto range =
      random_range(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto split = smache::model::calc_opt_sz(
        range, smache::model::Algo1Mode::OptimalInterval);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_CalcOptSz_Interval)->Arg(4)->Arg(9)->Arg(16);

void BM_CalcOptSz_PaperPrefix(benchmark::State& state) {
  smache::Rng rng(7);
  const auto range =
      random_range(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto split = smache::model::calc_opt_sz(
        range, smache::model::Algo1Mode::PaperPrefix);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_CalcOptSz_PaperPrefix)->Arg(4)->Arg(9)->Arg(16);

void BM_OptimalBufferSizes_ManyRanges(benchmark::State& state) {
  smache::Rng rng(11);
  std::vector<smache::model::RangeSpec> ranges;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    ranges.push_back(random_range(rng, 5));
  for (auto _ : state) {
    auto sizes = smache::model::optimal_buffer_sizes(
        ranges, smache::model::Algo1Mode::OptimalInterval);
    benchmark::DoNotOptimize(sizes);
  }
}
BENCHMARK(BM_OptimalBufferSizes_ManyRanges)->Arg(3)->Arg(32)->Arg(256);

void BM_Planner_PaperProblem(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto plan = smache::model::Planner().plan(
        dim, dim, smache::grid::StencilShape::von_neumann4(),
        smache::grid::BoundarySpec::paper_example());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Planner_PaperProblem)->Arg(11)->Arg(256)->Arg(1024);

void BM_Planner_MoorePeriodic(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto plan = smache::model::Planner().plan(
        dim, dim, smache::grid::StencilShape::moore9(),
        smache::grid::BoundarySpec::all_periodic());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Planner_MoorePeriodic)->Arg(16)->Arg(256);

}  // namespace

// Ablation E6: the register/BRAM hybridisation trade-off (§III "Hybrid use
// of registers and BRAM", §IV "Hybrid Smache vs Register-Only Smache").
//
// For several grid widths, sweeps the stream-buffer implementation from
// Case-R through Case-H at several BRAM-segment thresholds, reporting both
// the ESTIMATED and the ELABORATED footprint plus predicted Fmax — the
// design-space a constrained design would actually explore.
#include <cstdio>

#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  std::printf("=== Ablation: stream-buffer hybridisation sweep ===\n");
  std::printf("4-point stencil, circular/open boundaries (elaboration "
              "only)\n\n");

  for (const std::size_t dim : {11u, 64u, 256u, 1024u}) {
    smache::TextTable t({"config", "est Rsm", "est Bsm", "act Rsm",
                         "act Bsm", "act Rtotal", "act Btotal",
                         "Fmax MHz"});
    struct Cfg {
      const char* name;
      smache::model::StreamImpl impl;
      std::size_t threshold;
    };
    const Cfg cfgs[] = {
        {"Case-R", smache::model::StreamImpl::RegisterOnly, 4},
        {"Case-H t=3", smache::model::StreamImpl::Hybrid, 3},
        {"Case-H t=4", smache::model::StreamImpl::Hybrid, 4},
        {"Case-H t=16", smache::model::StreamImpl::Hybrid, 16},
        {"Case-H t=64", smache::model::StreamImpl::Hybrid, 64},
    };
    for (const auto& cfg : cfgs) {
      smache::ProblemSpec p = smache::ProblemSpec::paper_example();
      p.height = dim;
      p.width = dim;
      p.steps = 1;
      smache::EngineOptions opts = smache::EngineOptions::smache(cfg.impl);
      opts.bram_segment_threshold = cfg.threshold;
      const auto res = smache::Engine(opts).elaborate_only(p);
      t.begin_row();
      t.add_cell(std::string(cfg.name));
      t.add_cell(res.estimate->r_stream);
      t.add_cell(res.estimate->b_stream);
      t.add_cell(res.resources.r_stream);
      t.add_cell(res.resources.b_stream);
      t.add_cell(res.resources.r_total);
      t.add_cell(res.resources.b_total);
      t.add_cell(res.timing.fmax_mhz, 1);
    }
    std::printf("--- %zux%zu ---\n%s\n", dim, dim, t.to_ascii().c_str());
  }
  std::printf("expected shape: at 1024x1024, Case-R needs ~66K register "
              "bits while Case-H needs ~400 (paper: 66K vs 1.5K) at the "
              "cost of ~50%% more BRAM bits — 'this variation ... can be "
              "exploited to meet design constraints' (§IV).\n");
  return 0;
}

// Ablation E6: the register/BRAM hybridisation trade-off (§III "Hybrid use
// of registers and BRAM", §IV "Hybrid Smache vs Register-Only Smache").
//
// For several grid widths, sweeps the stream-buffer implementation from
// Case-R through Case-H at several BRAM-segment thresholds, reporting both
// the ESTIMATED and the ELABORATED footprint plus predicted Fmax — the
// design-space a constrained design would actually explore.
//
// Driven by the sweep subsystem: one elaborate-only SweepSpec per grid
// width expands to the five configurations (expansion collapses the
// Case-R x threshold aliases automatically) and runs on the SweepExecutor.
// SMACHE_SWEEP_THREADS overrides the worker count (default: all hardware
// threads; the table is identical for any value).
#include <cstdio>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "sweep/executor.hpp"

namespace {

std::string config_name(const smache::sweep::Scenario& s) {
  if (s.engine.stream_impl == smache::model::StreamImpl::RegisterOnly)
    return "Case-R";
  return "Case-H t=" + std::to_string(s.engine.bram_segment_threshold);
}

}  // namespace

int main() {
  std::printf("=== Ablation: stream-buffer hybridisation sweep ===\n");
  std::printf("4-point stencil, circular/open boundaries (elaboration "
              "only)\n\n");

  smache::sweep::ExecutorOptions opts;
  opts.threads = smache::threads_from_env("SMACHE_SWEEP_THREADS", 0);
  const smache::sweep::SweepExecutor executor(opts);

  for (const std::size_t dim : {11u, 64u, 256u, 1024u}) {
    smache::sweep::SweepSpec spec;
    spec.mode = smache::sweep::Mode::ElaborateOnly;
    spec.impls = {smache::model::StreamImpl::RegisterOnly,
                  smache::model::StreamImpl::Hybrid};
    spec.thresholds = {3, 4, 16, 64};
    spec.grids = {{dim, dim}};

    smache::TextTable t({"config", "est Rsm", "est Bsm", "act Rsm",
                         "act Bsm", "act Rtotal", "act Btotal",
                         "Fmax MHz"});
    for (const auto& r : executor.run(spec)) {
      if (!r.ok) {
        std::fprintf(stderr, "FAIL %s: %s\n", r.scenario.label.c_str(),
                     r.error.c_str());
        return 1;
      }
      t.begin_row();
      t.add_cell(config_name(r.scenario));
      t.add_cell(r.run.estimate->r_stream);
      t.add_cell(r.run.estimate->b_stream);
      t.add_cell(r.run.resources.r_stream);
      t.add_cell(r.run.resources.b_stream);
      t.add_cell(r.run.resources.r_total);
      t.add_cell(r.run.resources.b_total);
      t.add_cell(r.run.timing.fmax_mhz, 1);
    }
    std::printf("--- %zux%zu ---\n%s\n", dim, dim, t.to_ascii().c_str());
  }
  std::printf("expected shape: at 1024x1024, Case-R needs ~66K register "
              "bits while Case-H needs ~400 (paper: 66K vs 1.5K) at the "
              "cost of ~50%% more BRAM bits — 'this variation ... can be "
              "exploited to meet design constraints' (§IV).\n");
  return 0;
}

// Ablation E8: grid-size scaling of both designs (supports the paper's
// generalisation claim in §IV — the architecture is not specific to the
// 11x11 demo).
//
// Sweeps square grids, reporting cycles/point, traffic ratio and the
// simulated speed-up. The per-point cost of Smache must stay flat (~1
// cycle/point plus fill), the baseline's at ~tuple+1, and the ratios must
// match the 11x11 headline at every size.
//
// Driven by the sweep subsystem: ONE SweepSpec over architecture x grid
// size expands to all twelve runs, the SweepExecutor executes them on a
// worker pool (SMACHE_SWEEP_THREADS overrides; default all hardware
// threads), and the rows pair the index-collated results — identical
// numbers for any thread count.
#include <cstdio>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "sweep/executor.hpp"

int main() {
  std::printf("=== Scaling: grid size sweep (Smache vs baseline) ===\n");
  std::printf("4-point stencil, circular/open boundaries, 5 instances\n\n");

  smache::sweep::SweepSpec spec;
  spec.archs = {smache::Architecture::Baseline,
                smache::Architecture::Smache};
  spec.grids = {{8, 8}, {11, 11}, {16, 16}, {32, 32}, {64, 64}, {128, 128}};
  spec.steps = {5};

  smache::sweep::ExecutorOptions opts;
  opts.threads = smache::threads_from_env("SMACHE_SWEEP_THREADS", 0);
  const auto results = smache::sweep::SweepExecutor(opts).run(spec);

  // Cartesian order: architecture is the outermost dimension, so the first
  // |grids| results are the baseline runs and the next |grids| Smache.
  // Scenario seeds are workload-identity-scoped, so each pair runs the
  // IDENTICAL input grid — which also lets this bench double as a
  // cross-architecture correctness check on the output hashes.
  const std::size_t dims = spec.grids.size();
  smache::TextTable t({"grid", "base cyc/pt", "smache cyc/pt",
                       "cycle ratio", "traffic ratio", "speed-up x"});
  for (std::size_t g = 0; g < dims; ++g) {
    const auto& b = results[g];
    const auto& s = results[dims + g];
    if (!b.ok || !s.ok) {
      std::fprintf(stderr, "FAIL %s: %s\n",
                   (b.ok ? s : b).scenario.label.c_str(),
                   (b.ok ? s : b).error.c_str());
      return 1;
    }
    if (b.output_hash != s.output_hash) {
      std::fprintf(stderr, "OUTPUT MISMATCH %s vs %s\n",
                   b.scenario.label.c_str(), s.scenario.label.c_str());
      return 1;
    }
    const double points =
        static_cast<double>(b.scenario.problem.cells()) *
        static_cast<double>(b.scenario.problem.steps);

    t.begin_row();
    t.add_cell(std::to_string(spec.grids[g].height) + "x" +
               std::to_string(spec.grids[g].width));
    t.add_cell(static_cast<double>(b.run.cycles) / points, 2);
    t.add_cell(static_cast<double>(s.run.cycles) / points, 2);
    t.add_cell(static_cast<double>(s.run.cycles) /
                   static_cast<double>(b.run.cycles),
               3);
    t.add_cell(static_cast<double>(s.run.dram.total_bytes()) /
                   static_cast<double>(b.run.dram.total_bytes()),
               3);
    t.add_cell(b.run.exec_time_us / s.run.exec_time_us, 2);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("expected shape: smache cycles/point -> 1 as the window fill "
              "amortises; cycle ratio -> ~0.2, traffic ratio -> 0.4, "
              "speed-up ~2.5-3x at every size — the Figure 2 result is not "
              "an 11x11 artefact.\n");
  return 0;
}

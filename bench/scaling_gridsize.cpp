// Ablation E8: grid-size scaling of both designs (supports the paper's
// generalisation claim in §IV — the architecture is not specific to the
// 11x11 demo).
//
// Sweeps square grids, reporting cycles/point, traffic ratio and the
// simulated speed-up. The per-point cost of Smache must stay flat (~1
// cycle/point plus fill), the baseline's at ~tuple+1, and the ratios must
// match the 11x11 headline at every size.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  std::printf("=== Scaling: grid size sweep (Smache vs baseline) ===\n");
  std::printf("4-point stencil, circular/open boundaries, 5 instances\n\n");

  smache::TextTable t({"grid", "base cyc/pt", "smache cyc/pt",
                       "cycle ratio", "traffic ratio", "speed-up x"});
  for (const std::size_t dim : {8u, 11u, 16u, 32u, 64u, 128u}) {
    smache::ProblemSpec p = smache::ProblemSpec::paper_example();
    p.height = dim;
    p.width = dim;
    p.steps = 5;
    smache::Rng rng(dim);
    smache::grid::Grid<smache::word_t> init(dim, dim);
    for (std::size_t i = 0; i < init.size(); ++i)
      init[i] = static_cast<smache::word_t>(rng.next_below(1000));

    const auto b =
        smache::Engine(smache::EngineOptions::baseline()).run(p, init);
    const auto s =
        smache::Engine(smache::EngineOptions::smache()).run(p, init);
    const double points =
        static_cast<double>(p.cells()) * static_cast<double>(p.steps);

    t.begin_row();
    t.add_cell(std::to_string(dim) + "x" + std::to_string(dim));
    t.add_cell(static_cast<double>(b.cycles) / points, 2);
    t.add_cell(static_cast<double>(s.cycles) / points, 2);
    t.add_cell(static_cast<double>(s.cycles) /
                   static_cast<double>(b.cycles),
               3);
    t.add_cell(static_cast<double>(s.dram.total_bytes()) /
                   static_cast<double>(b.dram.total_bytes()),
               3);
    t.add_cell(b.exec_time_us / s.exec_time_us, 2);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("expected shape: smache cycles/point -> 1 as the window fill "
              "amortises; cycle ratio -> ~0.2, traffic ratio -> 0.4, "
              "speed-up ~2.5-3x at every size — the Figure 2 result is not "
              "an 11x11 artefact.\n");
  return 0;
}

// Ablation E5: what happens under a REALISTIC memory model.
//
// The paper's simulation (and our functional preset) grants one access per
// cycle regardless of address pattern; its introduction argues — citing
// the authors' MP-STREAM work [11] — that random/redundant accesses
// degrade sustained bandwidth on real DRAM. This bench quantifies that:
// both designs run under the functional preset, a ddr-like preset, and a
// small-row ddr preset (pessimistic row locality). The Smache advantage
// must WIDEN as the memory gets more realistic, because its traffic is one
// sequential burst per instance while the baseline issues word-granularity
// scattered reads.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

namespace {

struct MemCase {
  const char* name;
  smache::mem::DramConfig cfg;
};

}  // namespace

int main() {
  std::printf("=== Ablation: DRAM model realism (paper §I / MP-STREAM "
              "argument) ===\n");
  std::printf("32x32 grid, 4-point stencil, circular/open boundaries, 10 "
              "instances\n\n");

  smache::ProblemSpec p = smache::ProblemSpec::paper_example();
  p.height = 32;
  p.width = 32;
  p.steps = 10;

  smache::Rng rng(0xD7A3);
  smache::grid::Grid<smache::word_t> init(32, 32);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(1000));

  auto ddr_small_rows = smache::mem::DramConfig::ddr_like();
  ddr_small_rows.row_words = 64;

  const MemCase cases[] = {
      {"functional (paper-style)", smache::mem::DramConfig::functional()},
      {"ddr-like (1Ki-word rows)", smache::mem::DramConfig::ddr_like()},
      {"ddr-like (64-word rows)", ddr_small_rows},
  };

  smache::TextTable t({"memory model", "baseline cycles", "smache cycles",
                       "smache/baseline", "baseline row-miss%",
                       "smache row-miss%"});
  for (const auto& mc : cases) {
    smache::EngineOptions bopt = smache::EngineOptions::baseline();
    bopt.dram = mc.cfg;
    smache::EngineOptions sopt = smache::EngineOptions::smache();
    sopt.dram = mc.cfg;
    const auto b = smache::Engine(bopt).run(p, init);
    const auto s = smache::Engine(sopt).run(p, init);
    auto miss_pct = [](const smache::mem::DramStats& d) {
      const auto total = d.row_hits + d.row_misses;
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(d.row_misses) /
                              static_cast<double>(total);
    };
    t.begin_row();
    t.add_cell(std::string(mc.name));
    t.add_cell(b.cycles);
    t.add_cell(s.cycles);
    t.add_cell(static_cast<double>(s.cycles) /
                   static_cast<double>(b.cycles),
               3);
    t.add_cell(miss_pct(b.dram), 1);
    t.add_cell(miss_pct(s.dram), 1);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("expected shape: the smache/baseline cycle ratio shrinks as "
              "row-activation penalties grow — continuous contiguous "
              "streaming is exactly what Smache buys.\n");
  return 0;
}

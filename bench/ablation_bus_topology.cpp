// Ablation E11: memory-bus topology. DESIGN.md documents a modelling
// choice: the baseline drives a single shared memory port (a naive
// memory-mapped master) while Smache uses independent AXI-style
// read/write channels (Figure 1b's streaming interface). This bench makes
// that choice transparent by measuring all four combinations — the
// conclusion must not hinge on it.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  std::printf("=== Ablation: shared vs independent memory channels ===\n");
  std::printf("11x11 grid, 4-point stencil, circular/open boundaries, "
              "100 instances\n\n");

  smache::ProblemSpec p = smache::ProblemSpec::paper_example();
  smache::Rng rng(0xB05);
  smache::grid::Grid<smache::word_t> init(11, 11);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(4096));
  const auto expected = smache::reference_run(p, init);

  smache::TextTable t({"design", "bus", "cycles", "cycles/point",
                       "correct"});
  for (const auto arch :
       {smache::Architecture::Baseline, smache::Architecture::Smache}) {
    for (const bool shared : {true, false}) {
      smache::EngineOptions opts;
      opts.arch = arch;
      opts.auto_bus = false;
      opts.dram.shared_bus = shared;
      const auto res = smache::Engine(opts).run(p, init);
      t.begin_row();
      t.add_cell(std::string(smache::to_string(arch)));
      t.add_cell(std::string(shared ? "shared" : "independent"));
      t.add_cell(res.cycles);
      t.add_cell(static_cast<double>(res.cycles) /
                     static_cast<double>(p.cells() * p.steps),
                 2);
      t.add_cell(std::string(res.output == expected ? "yes" : "NO"));
    }
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("reading the table: each design pays exactly its access "
              "count on a shared port — baseline 4 reads + 1 write = ~5 "
              "cycles/point, Smache 1 read + 1 write = ~2 cycles/point — "
              "and its read-side count with independent channels (~4 vs "
              "~1, plus fill). The worst cross-comparison (Smache forced "
              "onto a shared port vs baseline given independent channels) "
              "still favours Smache 2x, and the like-for-like gap is "
              "3.4-4.2x — the Figure 2 conclusion does not hinge on the "
              "bus model.\n");
  return 0;
}

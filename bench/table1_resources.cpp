// Reproduces Table I of the paper: estimated vs actual on-chip memory
// utilisation for the 4-point stencil problem on 11x11 and 1024x1024
// grids, with the stream buffer in register-only (r) and hybrid (h)
// configurations.
//
// "Estimate" = the analytic cost model on the planned buffer architecture
// (no physical rounding, no control overhead), exactly like the paper's
// estimate rows. "Actual" = the elaborated design: every Reg/BramBank the
// RTL instantiates reports its bits to the resource ledger, with
// synthesis-style physical rounding on BRAM banks; Rtotal additionally
// includes the controller's FSM/counter registers — which is why actual
// exceeds estimate, as in the paper.
//
// Paper reference (bits):
//   11x11r     Estimate Rsm=800   Bsc=1408    | Actual Rsm=928  Bsc=1536
//   11x11h     Estimate Rsm=352   Bsm=448     | Actual Rsm=355  Bsm=512
//   1024x1024r Estimate Rsm=65632 Bsc=131072  | Actual Rsm=65670 Bsc=131200
//   1024x1024h Estimate Rsm=352   Bsm=65280   | Actual Rsm=362  Bsm=65536
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"

int main() {
  using smache::model::StreamImpl;

  struct Row {
    std::size_t dim;
    StreamImpl impl;
    const char* label;
  };
  const std::vector<Row> rows = {
      {11, StreamImpl::RegisterOnly, "11x11r"},
      {11, StreamImpl::Hybrid, "11x11h"},
      {1024, StreamImpl::RegisterOnly, "1024x1024r"},
      {1024, StreamImpl::Hybrid, "1024x1024h"},
  };

  std::printf("=== Table I: estimated vs actual on-chip memory (bits) ===\n");
  std::printf("R = registers, B = BRAM; sc = static buffers, sm = stream "
              "buffer\n\n");

  for (const Row& row : rows) {
    smache::ProblemSpec p = smache::ProblemSpec::paper_example();
    p.height = row.dim;
    p.width = row.dim;
    p.steps = 1;
    // Elaborate without simulating (the 1M-cell grid is a resource study).
    const auto res = smache::Engine(smache::EngineOptions::smache(row.impl))
                         .elaborate_only(p);
    std::printf("%s",
                smache::format_table1_rows(row.label, res).c_str());
    std::printf("  (M20K blocks: %llu)\n\n",
                static_cast<unsigned long long>(res.resources.m20k_blocks));
  }

  std::printf("paper reference rows (bits):\n");
  std::printf("  11x11r     est Rsm 800,   Bsc 1408   | act Rsm 928,  Rtot "
              "998,  Bsc 1536\n");
  std::printf("  11x11h     est Rsm 352,   Bsm 448    | act Rsm 355,  Rtot "
              "425,  Bsm 512 (Btot 2048)\n");
  std::printf("  1024x1024r est Rsm 65632, Bsc 131072 | act Rsm 65670, Rtot "
              "66857, Bsc 131200\n");
  std::printf("  1024x1024h est Rsm 352,   Bsm 65280  | act Rsm 362,  Rtot "
              "1549, Bsm 65536 (Btot 196736)\n");
  return 0;
}

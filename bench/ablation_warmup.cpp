// Ablation E4: warm-up amortisation (§III: "This warm-up cost is amortized
// over multiple work-instance iterations").
//
// Runs the paper problem for increasing instance counts and reports the
// fixed warm-up cost, marginal cycles per instance, and the fraction of
// total time spent warming up — which must vanish as instances grow.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"

int main() {
  std::printf("=== Ablation: warm-up amortisation (paper §III) ===\n");
  std::printf("11x11 grid, 4-point stencil, circular/open boundaries\n\n");

  smache::Rng rng(0xAB1A);
  smache::grid::Grid<smache::word_t> init(11, 11);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(1000));

  smache::TextTable t({"instances", "total cycles", "warm-up cycles",
                       "cycles/instance", "warm-up share %"});
  for (const std::size_t steps : {1u, 2u, 5u, 10u, 25u, 50u, 100u, 200u}) {
    smache::ProblemSpec p = smache::ProblemSpec::paper_example();
    p.steps = steps;
    const auto res =
        smache::Engine(smache::EngineOptions::smache()).run(p, init);
    t.begin_row();
    t.add_cell(static_cast<std::uint64_t>(steps));
    t.add_cell(res.cycles);
    t.add_cell(res.warmup_cycles);
    t.add_cell(static_cast<double>(res.cycles) /
                   static_cast<double>(steps),
               1);
    t.add_cell(100.0 * static_cast<double>(res.warmup_cycles) /
                   static_cast<double>(res.cycles),
               2);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("expected shape: warm-up is a constant ~30 cycles (two row "
              "prefetches); per-instance cycles converge to ~N + fill, and "
              "the warm-up share decays toward zero — the paper's "
              "amortisation claim.\n");
  return 0;
}

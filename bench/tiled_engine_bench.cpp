// Tiled-engine throughput: simulated cycles per wall second when one
// scenario is sharded into halo-exchange tiles (Engine::run_tiled) versus
// the single-instance engine on the same problem. The tiled rate is the
// perf-gated metric for the tiling subsystem; the untiled rate on the same
// problem is recorded alongside so the redundant-halo overhead and the
// thread-level speedup stay visible in one report.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/engine.hpp"

namespace {

smache::grid::Grid<smache::word_t> bench_input(std::size_t n) {
  smache::Rng rng(5);
  smache::grid::Grid<smache::word_t> init(n, n);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(1000));
  return init;
}

smache::ProblemSpec bench_problem(std::size_t n) {
  smache::ProblemSpec p = smache::ProblemSpec::paper_example();
  p.height = n;
  p.width = n;
  p.steps = 8;
  return p;
}

constexpr std::size_t kGridN = 24;

void BM_UntiledEngineCyclesPerSecond(benchmark::State& state) {
  const auto init = bench_input(kGridN);
  const auto p = bench_problem(kGridN);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto res =
        smache::Engine(smache::EngineOptions::smache()).run(p, init);
    cycles += res.cycles;
    benchmark::DoNotOptimize(res.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_UntiledEngineCyclesPerSecond);

void run_tiled(benchmark::State& state, std::size_t threads) {
  const auto init = bench_input(kGridN);
  const auto p = bench_problem(kGridN);
  smache::TilingSpec tiling;
  tiling.tiles_r = 2;
  tiling.tiles_c = 2;
  tiling.threads = threads;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto res =
        smache::Engine(smache::EngineOptions::smache()).run_tiled(p, init,
                                                                  tiling);
    cycles += res.cycles;
    benchmark::DoNotOptimize(res.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}

void BM_TiledEngineCyclesPerSecond(benchmark::State& state) {
  // 2x2 mesh, serial tile execution: isolates the tiling overhead
  // (gather/stitch copies + redundant halo cells) from thread speedup.
  run_tiled(state, 1);
}
BENCHMARK(BM_TiledEngineCyclesPerSecond);

void BM_TiledEngineThreadedCyclesPerSecond(benchmark::State& state) {
  // 2x2 mesh on 4 workers: the intra-scenario parallel path TSan covers.
  run_tiled(state, 4);
}
BENCHMARK(BM_TiledEngineThreadedCyclesPerSecond);

}  // namespace

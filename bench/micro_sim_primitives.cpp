// Microbenchmark E9: throughput of the simulation substrate itself —
// engineering data for anyone extending the simulator (how many simulated
// cycles per second the primitives and the full engine sustain).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "mem/bram.hpp"
#include "mem/dram.hpp"
#include "rtl/stream_buffer.hpp"
#include "sim/fifo.hpp"
#include "sim/simulator.hpp"

namespace {

void BM_FifoPushPopCycle(benchmark::State& state) {
  smache::sim::Simulator sim;
  smache::sim::Fifo<smache::word_t> f(sim, "f", 4);
  f.push(0);
  sim.step();
  std::uint64_t v = 1;
  for (auto _ : state) {
    if (f.can_pop()) benchmark::DoNotOptimize(f.pop());
    if (f.can_push()) f.push(static_cast<smache::word_t>(v++));
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FifoPushPopCycle);

void BM_BramReadWriteCycle(benchmark::State& state) {
  smache::sim::Simulator sim;
  smache::mem::BramBank b(sim, "b", 1024, 32,
                          smache::mem::BramBank::Mode::Ram);
  std::size_t addr = 0;
  for (auto _ : state) {
    b.read(addr);
    b.write((addr + 512) % 1024, addr);
    sim.step();
    benchmark::DoNotOptimize(b.rdata());
    addr = (addr + 1) % 1024;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BramReadWriteCycle);

void BM_DramBurstStreaming(benchmark::State& state) {
  smache::sim::Simulator sim;
  smache::mem::DramModel d(sim, "d", 1 << 16,
                           smache::mem::DramConfig::functional());
  std::uint64_t outstanding = 0;
  for (auto _ : state) {
    if (outstanding == 0 && d.read_req().can_push()) {
      d.read_req().push({0, 4096});
      outstanding = 4096;
    }
    sim.step();
    if (d.read_data().can_pop()) {
      benchmark::DoNotOptimize(d.read_data().pop());
      --outstanding;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramBurstStreaming);

void BM_StreamBufferShift(benchmark::State& state) {
  smache::sim::Simulator sim;
  smache::model::PlannerOptions opts;
  opts.stream_impl = state.range(0) == 0
                         ? smache::model::StreamImpl::RegisterOnly
                         : smache::model::StreamImpl::Hybrid;
  const auto plan = smache::model::Planner(opts).plan(
      64, 64, smache::grid::StencilShape::von_neumann4(),
      smache::grid::BoundarySpec::paper_example());
  smache::rtl::StreamBuffer sb(sim, "sb", plan);
  smache::word_t v = 0;
  for (auto _ : state) {
    sb.shift(v++);
    sim.step();
    benchmark::DoNotOptimize(sb.tap(2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamBufferShift)->Arg(0)->Arg(1);

void BM_EngineCyclesPerSecond(benchmark::State& state) {
  // Full-system rate: simulated cycles per wall second for the paper
  // problem (batched one instance per iteration).
  smache::Rng rng(5);
  smache::grid::Grid<smache::word_t> init(11, 11);
  for (std::size_t i = 0; i < init.size(); ++i)
    init[i] = static_cast<smache::word_t>(rng.next_below(1000));
  smache::ProblemSpec p = smache::ProblemSpec::paper_example();
  p.steps = 10;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto res =
        smache::Engine(smache::EngineOptions::smache()).run(p, init);
    cycles += res.cycles;
    benchmark::DoNotOptimize(res.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_EngineCyclesPerSecond);

}  // namespace

// Library-provided main(), mirroring benchmark::benchmark_main — the bench
// sources register with BENCHMARK(...) and define no main of their own.
#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// minibenchmark — a dependency-free shim for the Google Benchmark API subset
// used by this repository: BENCHMARK(fn)->Arg(n), benchmark::State (range,
// iterations, SetItemsProcessed, SetLabel), and benchmark::DoNotOptimize.
// The library supplies main() (see benchmark_main.cpp), matching how the
// bench sources rely on benchmark::benchmark_main.
//
// Command-line flags (Google Benchmark compatible subset):
//   --benchmark_format=console|json        stdout reporter (default console)
//   --benchmark_out=<file>                 also write a report to <file>
//   --benchmark_out_format=console|json    format for --benchmark_out
//                                          (default json)
// The JSON report mirrors Google Benchmark's shape: a "context" object and
// a "benchmarks" array with name/iterations/real_time/items_per_second, so
// CI can track paper-figure throughput over time.
#ifndef MINIBENCHMARK_BENCHMARK_BENCHMARK_H_
#define MINIBENCHMARK_BENCHMARK_BENCHMARK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

class State {
 public:
  State(std::int64_t max_iterations, std::vector<std::int64_t> args)
      : max_iterations_(max_iterations), args_(std::move(args)) {}

  // Range-for protocol: `for (auto _ : state)` runs exactly
  // max_iterations_ times. The sentinel comparison drives the countdown.
  // The dereferenced value has a non-trivial destructor so that the
  // idiomatic `for (auto _ : state)` does not trip -Wunused-variable.
  struct IterationToken {
    IterationToken() {}
    ~IterationToken() {}
  };
  struct Iterator {
    State* state;
    bool operator!=(const Iterator&) { return state->KeepRunning(); }
    void operator++() {}
    IterationToken operator*() const { return {}; }
  };
  Iterator begin() { return {this}; }
  Iterator end() { return {this}; }

  bool KeepRunning() {
    if (count_ >= max_iterations_) return false;
    ++count_;
    return true;
  }

  std::int64_t range(std::size_t index = 0) const {
    return index < args_.size() ? args_[index] : 0;
  }
  std::int64_t iterations() const { return count_; }

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  void SetLabel(const std::string& label) { label_ = label; }

  std::int64_t items_processed() const { return items_processed_; }
  std::int64_t bytes_processed() const { return bytes_processed_; }
  const std::string& label() const { return label_; }

 private:
  std::int64_t max_iterations_;
  std::int64_t count_ = 0;
  std::vector<std::int64_t> args_;
  std::int64_t items_processed_ = 0;
  std::int64_t bytes_processed_ = 0;
  std::string label_;
};

using Function = void (*)(State&);

namespace internal {

class Benchmark {
 public:
  Benchmark(std::string name, Function fn) : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t value) {
    arg_sets_.push_back({value});
    return this;
  }
  Benchmark* Args(std::vector<std::int64_t> values) {
    arg_sets_.push_back(std::move(values));
    return this;
  }
  Benchmark* Range(std::int64_t lo, std::int64_t hi) {
    // Emit lo, then the multiplier progression from max(lo, 1) — a lo of 0
    // must not stall the loop.
    if (lo < 1) arg_sets_.push_back({lo});
    for (std::int64_t v = lo < 1 ? 1 : lo; v < hi; v *= 8)
      arg_sets_.push_back({v});
    arg_sets_.push_back({hi});
    return this;
  }
  Benchmark* Unit(int) { return this; }
  Benchmark* Iterations(std::int64_t n) {
    fixed_iterations_ = n;
    return this;
  }

  const std::string& name() const { return name_; }
  Function fn() const { return fn_; }
  const std::vector<std::vector<std::int64_t>>& arg_sets() const {
    return arg_sets_;
  }
  std::int64_t fixed_iterations() const { return fixed_iterations_; }

 private:
  std::string name_;
  Function fn_;
  std::vector<std::vector<std::int64_t>> arg_sets_;
  std::int64_t fixed_iterations_ = 0;
};

std::vector<Benchmark*>& Registry();
Benchmark* RegisterBenchmark(const char* name, Function fn);

}  // namespace internal

// Time units accepted by ->Unit(); reporting is always nanoseconds here.
enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

template <typename T>
inline void DoNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
#endif
}

inline void ClobberMemory() {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : : "memory");
#endif
}

void Initialize(int* argc, char** argv);
void RunSpecifiedBenchmarks();

namespace internal {
/// Reporting options parsed by Initialize (exposed for the shim's tests).
struct ReportConfig {
  bool console_json = false;       // --benchmark_format=json
  std::string out_path;            // --benchmark_out=<file>
  bool out_json = true;            // --benchmark_out_format (default json)
};
ReportConfig& Config();
}  // namespace internal

}  // namespace benchmark

#define BENCHMARK(fn)                                                  \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT_(          \
      minibench_reg_, __LINE__) =                                      \
      ::benchmark::internal::RegisterBenchmark(#fn, fn)
#define MINIBENCH_CONCAT_IMPL_(a, b) a##b
#define MINIBENCH_CONCAT_(a, b) MINIBENCH_CONCAT_IMPL_(a, b)

#define BENCHMARK_MAIN()                            \
  int main(int argc, char** argv) {                 \
    ::benchmark::Initialize(&argc, argv);           \
    ::benchmark::RunSpecifiedBenchmarks();          \
    return 0;                                       \
  }

#endif  // MINIBENCHMARK_BENCHMARK_BENCHMARK_H_

// minibenchmark runner: registry storage, adaptive timing loop, and two
// reporters — a console table close enough to Google Benchmark's for
// eyeballing, and a Google-Benchmark-shaped JSON report for machines
// (scripts/bench.sh, CI artifacts).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace benchmark {
namespace internal {

namespace {
// Owns every registered benchmark for the life of the process, so the
// registry is leak-free under LeakSanitizer (the CI sanitizer leg runs the
// shim's own tests).
std::vector<std::unique_ptr<Benchmark>>& Storage() {
  static std::vector<std::unique_ptr<Benchmark>> storage;
  return storage;
}
}  // namespace

std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> registry;
  return registry;
}

Benchmark* RegisterBenchmark(const char* name, Function fn) {
  Storage().push_back(std::make_unique<Benchmark>(name, fn));
  Registry().push_back(Storage().back().get());
  return Registry().back();
}

ReportConfig& Config() {
  static ReportConfig config;
  return config;
}

namespace {

double MinTimeSeconds() {
  if (const char* env = std::getenv("MINIBENCH_MIN_TIME"))
    return std::atof(env);
  return 0.1;
}

/// Best-of-N repetitions per benchmark (after adaptive sizing), to damp
/// scheduler/noisy-neighbour noise on shared runners: the fastest
/// repetition is the closest observable to the code's true speed — the
/// same policy scripts/bench.sh applies to the wall-clock paper benches.
int Repetitions() {
  if (const char* env = std::getenv("MINIBENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1) return reps;
  }
  return 3;
}

struct RunResult {
  std::string name;
  std::int64_t iterations = 0;
  double seconds = 0.0;
  std::int64_t items_processed = 0;
  std::string label;

  double ns_per_iter() const {
    return iterations > 0
               ? seconds * 1e9 / static_cast<double>(iterations)
               : 0.0;
  }
};

RunResult RunOnce(Function fn, std::int64_t iterations,
                  const std::vector<std::int64_t>& args) {
  State state(iterations, args);
  const auto start = std::chrono::steady_clock::now();
  fn(state);
  const auto stop = std::chrono::steady_clock::now();
  RunResult r;
  r.iterations = state.iterations();
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.items_processed = state.items_processed();
  r.label = state.label();
  return r;
}

void ReportConsole(const RunResult& r) {
  std::printf("%-48s %14.1f ns %12lld iters", r.name.c_str(),
              r.ns_per_iter(), static_cast<long long>(r.iterations));
  if (r.items_processed > 0 && r.seconds > 0.0)
    std::printf(" %12.3g items/s",
                static_cast<double>(r.items_processed) / r.seconds);
  if (!r.label.empty()) std::printf("  %s", r.label.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters are invalid raw inside JSON strings.
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void WriteJson(std::FILE* f, const std::vector<RunResult>& results,
               const char* executable) {
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"library\": \"minibenchmark\",\n");
  std::fprintf(f, "    \"executable\": \"%s\",\n",
               JsonEscape(executable).c_str());
  std::fprintf(f, "    \"min_time_s\": %g,\n", MinTimeSeconds());
  std::fprintf(f, "    \"repetitions\": %d\n  },\n", Repetitions());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n",
                 JsonEscape(r.name).c_str());
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"iterations\": %lld,\n",
                 static_cast<long long>(r.iterations));
    std::fprintf(f, "      \"real_time\": %.4f,\n", r.ns_per_iter());
    std::fprintf(f, "      \"time_unit\": \"ns\"");
    if (r.items_processed > 0 && r.seconds > 0.0)
      std::fprintf(f, ",\n      \"items_per_second\": %.6g",
                   static_cast<double>(r.items_processed) / r.seconds);
    if (!r.label.empty())
      std::fprintf(f, ",\n      \"label\": \"%s\"",
                   JsonEscape(r.label).c_str());
    std::fprintf(f, "\n    }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
}

RunResult RunBenchmark(const Benchmark& b,
                       const std::vector<std::int64_t>& args) {
  std::string name = b.name();
  for (const auto a : args) name += "/" + std::to_string(a);

  if (b.fixed_iterations() > 0) {
    RunResult r = RunOnce(b.fn(), b.fixed_iterations(), args);
    r.name = std::move(name);
    return r;
  }
  // Adaptive sizing: grow the iteration count until the wall time is
  // meaningful, then report the fastest of MINIBENCH_REPS runs at that
  // final iteration count (see Repetitions()).
  const double min_time = MinTimeSeconds();
  std::int64_t iters = 1;
  RunResult result = RunOnce(b.fn(), iters, args);
  while (result.seconds < min_time && iters < (std::int64_t{1} << 40)) {
    const double scale =
        result.seconds > 1e-9 ? min_time / result.seconds * 1.4 : 1000.0;
    const auto next =
        static_cast<std::int64_t>(static_cast<double>(iters) * scale) + 1;
    iters = next > iters ? next : iters * 2;
    result = RunOnce(b.fn(), iters, args);
  }
  for (int rep = 1; rep < Repetitions(); ++rep) {
    RunResult again = RunOnce(b.fn(), iters, args);
    if (again.seconds < result.seconds) result = again;
  }
  result.name = std::move(name);
  return result;
}

const char* g_executable = "minibenchmark";

}  // namespace
}  // namespace internal

void Initialize(int* argc, char** argv) {
  if (argc == nullptr || argv == nullptr) return;
  if (*argc > 0) internal::g_executable = argv[0];
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const auto value_of = [arg](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value_of("--benchmark_format=")) {
      internal::Config().console_json = std::strcmp(v, "json") == 0;
    } else if (const char* v2 = value_of("--benchmark_out_format=")) {
      internal::Config().out_json = std::strcmp(v2, "json") == 0;
    } else if (const char* v3 = value_of("--benchmark_out=")) {
      internal::Config().out_path = v3;
    } else {
      argv[kept++] = argv[i];  // leave unknown flags for the program
    }
  }
  argv[kept] = nullptr;  // preserve the argv[argc] == NULL contract
  *argc = kept;
}

void RunSpecifiedBenchmarks() {
  const internal::ReportConfig& config = internal::Config();
  std::vector<internal::RunResult> results;
  if (!config.console_json) {
    std::printf("%-48s %17s %18s\n", "Benchmark", "Time", "Iterations");
    std::printf("%s\n", std::string(84, '-').c_str());
  }
  for (const auto* b : internal::Registry()) {
    std::vector<std::vector<std::int64_t>> arg_sets = b->arg_sets();
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const auto& args : arg_sets) {
      internal::RunResult r = internal::RunBenchmark(*b, args);
      if (!config.console_json) internal::ReportConsole(r);
      results.push_back(std::move(r));
    }
  }
  if (config.console_json)
    internal::WriteJson(stdout, results, internal::g_executable);
  if (!config.out_path.empty()) {
    std::FILE* f = std::fopen(config.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "minibenchmark: cannot open --benchmark_out=%s\n",
                   config.out_path.c_str());
    } else {
      if (config.out_json) {
        internal::WriteJson(f, results, internal::g_executable);
      } else {
        // Console format to file: re-render the table.
        std::fprintf(f, "%-48s %17s %18s\n", "Benchmark", "Time",
                     "Iterations");
        for (const auto& r : results)
          std::fprintf(f, "%-48s %14.1f ns %12lld iters\n", r.name.c_str(),
                       r.ns_per_iter(),
                       static_cast<long long>(r.iterations));
      }
      std::fclose(f);
    }
  }
}

}  // namespace benchmark

// minibenchmark runner: registry storage, adaptive timing loop, and a
// console reporter close enough to Google Benchmark's for eyeballing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace benchmark {
namespace internal {

std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> registry;
  return registry;
}

Benchmark* RegisterBenchmark(const char* name, Function fn) {
  auto* b = new Benchmark(name, fn);  // Lives for the process; freed by exit.
  Registry().push_back(b);
  return b;
}

namespace {

double MinTimeSeconds() {
  if (const char* env = std::getenv("MINIBENCH_MIN_TIME"))
    return std::atof(env);
  return 0.1;
}

struct RunResult {
  std::int64_t iterations;
  double seconds;
  std::int64_t items_processed;
  std::string label;
};

RunResult RunOnce(Function fn, std::int64_t iterations,
                  const std::vector<std::int64_t>& args) {
  State state(iterations, args);
  const auto start = std::chrono::steady_clock::now();
  fn(state);
  const auto stop = std::chrono::steady_clock::now();
  return {state.iterations(),
          std::chrono::duration<double>(stop - start).count(),
          state.items_processed(), state.label()};
}

void Report(const std::string& name, const RunResult& r) {
  const double ns_per_iter =
      r.iterations > 0 ? r.seconds * 1e9 / static_cast<double>(r.iterations)
                       : 0.0;
  std::printf("%-48s %14.1f ns %12lld iters", name.c_str(), ns_per_iter,
              static_cast<long long>(r.iterations));
  if (r.items_processed > 0 && r.seconds > 0.0)
    std::printf(" %12.3g items/s",
                static_cast<double>(r.items_processed) / r.seconds);
  if (!r.label.empty()) std::printf("  %s", r.label.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

void RunBenchmark(const Benchmark& b, const std::vector<std::int64_t>& args) {
  std::string name = b.name();
  for (const auto a : args) name += "/" + std::to_string(a);

  if (b.fixed_iterations() > 0) {
    Report(name, RunOnce(b.fn(), b.fixed_iterations(), args));
    return;
  }
  // Adaptive sizing: grow the iteration count until the wall time is
  // meaningful, then report the final (largest) run.
  const double min_time = MinTimeSeconds();
  std::int64_t iters = 1;
  RunResult result = RunOnce(b.fn(), iters, args);
  while (result.seconds < min_time && iters < (std::int64_t{1} << 40)) {
    const double scale =
        result.seconds > 1e-9 ? min_time / result.seconds * 1.4 : 1000.0;
    const auto next =
        static_cast<std::int64_t>(static_cast<double>(iters) * scale) + 1;
    iters = next > iters ? next : iters * 2;
    result = RunOnce(b.fn(), iters, args);
  }
  Report(name, result);
}

}  // namespace
}  // namespace internal

void Initialize(int*, char**) {}

void RunSpecifiedBenchmarks() {
  std::printf("%-48s %17s %18s\n", "Benchmark", "Time", "Iterations");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const auto* b : internal::Registry()) {
    if (b->arg_sets().empty()) {
      internal::RunBenchmark(*b, {});
    } else {
      for (const auto& args : b->arg_sets()) internal::RunBenchmark(*b, args);
    }
  }
}

}  // namespace benchmark

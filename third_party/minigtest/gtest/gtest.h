// minigtest — a dependency-free, GoogleTest-compatible testing harness.
//
// Implements the subset of the GoogleTest API used by this repository so the
// test suite builds with nothing beyond a C++17 compiler:
//
//   * TEST, TEST_P / INSTANTIATE_TEST_SUITE_P (Values / ValuesIn / Combine,
//     custom name generators via testing::TestParamInfo)
//   * EXPECT_/ASSERT_ EQ NE TRUE FALSE GT GE LT LE STREQ NEAR DOUBLE_EQ
//     THROW NO_THROW, plus FAIL / ADD_FAILURE / SUCCEED, all with
//     `<< "message"` streaming
//   * ::testing::InitGoogleTest, RUN_ALL_TESTS, --gtest_filter=PATTERNS,
//     --gtest_list_tests, and GoogleTest-style pass/fail output with a
//     non-zero exit code on any failure
//
// The build can swap in real GoogleTest (see SMACHE_USE_SYSTEM_GTEST in the
// top-level CMakeLists.txt); test sources compile unchanged against either.
#ifndef MINIGTEST_GTEST_GTEST_H_
#define MINIGTEST_GTEST_GTEST_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---------------------------------------------------------------------------
// Value printing: stream when the type supports it, fall back otherwise.
// ---------------------------------------------------------------------------
namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
void UniversalPrint(const T& value, std::ostream& os) {
  if constexpr (IsStreamable<T>::value) {
    os << value;
  } else if constexpr (std::is_enum_v<T>) {
    os << static_cast<long long>(
        static_cast<std::underlying_type_t<T>>(value));
  } else {
    os << sizeof(T) << "-byte object <unprintable>";
  }
}

inline void UniversalPrint(std::nullptr_t, std::ostream& os) { os << "nullptr"; }
inline void UniversalPrint(bool b, std::ostream& os) {
  os << (b ? "true" : "false");
}
inline void UniversalPrint(const char* s, std::ostream& os) {
  if (s == nullptr)
    os << "NULL";
  else
    os << '"' << s << '"';
}
inline void UniversalPrint(char* s, std::ostream& os) {
  UniversalPrint(static_cast<const char*>(s), os);
}
inline void UniversalPrint(const std::string& s, std::ostream& os) {
  os << '"' << s << '"';
}

template <typename T>
std::string PrintToString(const T& value) {
  std::ostringstream os;
  UniversalPrint(value, os);
  return os.str();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Message: ostream-like accumulator appended to failures via `<<`.
// ---------------------------------------------------------------------------
class Message {
 public:
  Message() = default;
  template <typename T>
  Message& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string GetString() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

// ---------------------------------------------------------------------------
// AssertionResult
// ---------------------------------------------------------------------------
class AssertionResult {
 public:
  explicit AssertionResult(bool success) : success_(success) {}
  AssertionResult(bool success, std::string message)
      : success_(success), message_(std::move(message)) {}
  explicit operator bool() const { return success_; }
  const char* failure_message() const { return message_.c_str(); }
  template <typename T>
  AssertionResult& operator<<(const T& value) {
    std::ostringstream os;
    os << value;
    message_ += os.str();
    return *this;
  }

 private:
  bool success_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

// ---------------------------------------------------------------------------
// Test registry
// ---------------------------------------------------------------------------
class Test;

namespace internal {

struct TestEntry {
  std::string suite_name;
  std::string test_name;
  std::function<Test*()> factory;
  std::string full_name() const { return suite_name + "." + test_name; }
};

// Central run state; a single translation unit per binary instantiates the
// inline storage (C++17 inline variables).
class UnitTestImpl {
 public:
  static UnitTestImpl& Get() {
    static UnitTestImpl instance;
    return instance;
  }

  void AddTest(TestEntry entry) { tests_.push_back(std::move(entry)); }
  void AddExpander(std::function<void()> fn) {
    expanders_.push_back(std::move(fn));
  }

  std::vector<TestEntry>& tests() { return tests_; }

  void ExpandParameterizedTests() {
    for (auto& fn : expanders_) fn();
    expanders_.clear();
  }

  // Current-test failure bookkeeping (set by AssertHelper).
  void RecordFailure(const std::string& file, int line,
                     const std::string& message) {
    current_test_failed_ = true;
    std::cout << file << ":" << line << ": Failure" << std::endl;
    if (!message.empty()) std::cout << message << std::endl;
    for (auto it = trace_stack_.rbegin(); it != trace_stack_.rend(); ++it)
      std::cout << "Google Test trace:\n" << *it << std::endl;
  }

  void RecordSkip(const std::string& message) {
    current_test_skipped_ = true;
    if (!message.empty()) std::cout << message << std::endl;
  }

  bool current_test_failed_ = false;
  bool current_test_skipped_ = false;
  std::string filter_ = "*";
  bool list_tests_ = false;
  std::vector<std::string> trace_stack_;

 private:
  std::vector<TestEntry> tests_;
  std::vector<std::function<void()>> expanders_;
};

// Simple glob: '*' matches any run, '?' matches one character.
inline bool GlobMatch(const char* pattern, const char* str) {
  if (*pattern == '\0') return *str == '\0';
  if (*pattern == '*')
    return GlobMatch(pattern + 1, str) ||
           (*str != '\0' && GlobMatch(pattern, str + 1));
  if (*str == '\0') return false;
  if (*pattern != '?' && *pattern != *str) return false;
  return GlobMatch(pattern + 1, str + 1);
}

// gtest filter syntax: positive patterns ':' separated, then an optional
// '-' introducing ':'-separated negative patterns.
inline bool FilterMatches(const std::string& filter, const std::string& name) {
  std::string positive = filter;
  std::string negative;
  const auto dash = filter.find('-');
  if (dash != std::string::npos) {
    positive = filter.substr(0, dash);
    negative = filter.substr(dash + 1);
  }
  if (positive.empty()) positive = "*";
  const auto matches_any = [&name](const std::string& patterns) {
    std::size_t start = 0;
    while (start <= patterns.size()) {
      auto end = patterns.find(':', start);
      if (end == std::string::npos) end = patterns.size();
      const std::string pat = patterns.substr(start, end - start);
      if (!pat.empty() && GlobMatch(pat.c_str(), name.c_str())) return true;
      start = end + 1;
    }
    return false;
  };
  if (!matches_any(positive)) return false;
  if (!negative.empty() && matches_any(negative)) return false;
  return true;
}

// RAII helper behind SCOPED_TRACE: failure reports include every trace
// frame active at the failure point.
class ScopedTraceHelper {
 public:
  ScopedTraceHelper(const char* file, int line, const Message& message) {
    std::ostringstream os;
    os << file << ":" << line << ": " << message.GetString();
    UnitTestImpl::Get().trace_stack_.push_back(os.str());
  }
  ~ScopedTraceHelper() { UnitTestImpl::Get().trace_stack_.pop_back(); }
  ScopedTraceHelper(const ScopedTraceHelper&) = delete;
  ScopedTraceHelper& operator=(const ScopedTraceHelper&) = delete;
};

class SkipHelper {
 public:
  // Streaming target for `GTEST_SKIP() << "reason"`.
  void operator=(const Message& message) const {
    UnitTestImpl::Get().RecordSkip(message.GetString());
  }
};

class AssertHelper {
 public:
  enum Type { kNonFatal, kFatal };
  AssertHelper(Type type, const char* file, int line, std::string message)
      : type_(type), file_(file), line_(line), message_(std::move(message)) {}
  // The '=' operator is how the trailing `<< "..."` text reaches the report:
  // EXPECT_x(...) expands to `AssertHelper(...) = Message() << ...`.
  void operator=(const Message& message) const {
    std::string full = message_;
    const std::string extra = message.GetString();
    if (!extra.empty()) full += "\n" + extra;
    UnitTestImpl::Get().RecordFailure(file_, line_, full);
  }

 private:
  Type type_;
  const char* file_;
  int line_;
  std::string message_;
};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------
template <typename T1, typename T2>
AssertionResult CmpHelperFailure(const char* expr1, const char* expr2,
                                 const T1& val1, const T2& val2,
                                 const char* op) {
  std::ostringstream os;
  os << "Expected: (" << expr1 << ") " << op << " (" << expr2
     << "), actual: " << PrintToString(val1) << " vs " << PrintToString(val2);
  return AssertionResult(false, os.str());
}

template <typename T1, typename T2>
AssertionResult CmpHelperEQ(const char* expr1, const char* expr2,
                            const T1& val1, const T2& val2) {
  if (val1 == val2) return AssertionSuccess();
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << expr1 << "\n    Which is: "
     << PrintToString(val1) << "\n  " << expr2 << "\n    Which is: "
     << PrintToString(val2);
  return AssertionResult(false, os.str());
}

#define MINIGTEST_DEFINE_CMP_HELPER_(name, op)                              \
  template <typename T1, typename T2>                                       \
  AssertionResult CmpHelper##name(const char* expr1, const char* expr2,     \
                                  const T1& val1, const T2& val2) {         \
    if (val1 op val2) return AssertionSuccess();                            \
    return CmpHelperFailure(expr1, expr2, val1, val2, #op);                 \
  }

MINIGTEST_DEFINE_CMP_HELPER_(NE, !=)
MINIGTEST_DEFINE_CMP_HELPER_(GT, >)
MINIGTEST_DEFINE_CMP_HELPER_(GE, >=)
MINIGTEST_DEFINE_CMP_HELPER_(LT, <)
MINIGTEST_DEFINE_CMP_HELPER_(LE, <=)
#undef MINIGTEST_DEFINE_CMP_HELPER_

inline AssertionResult CmpHelperSTREQ(const char* expr1, const char* expr2,
                                      const char* val1, const char* val2) {
  if (val1 == nullptr && val2 == nullptr) return AssertionSuccess();
  if (val1 != nullptr && val2 != nullptr && std::strcmp(val1, val2) == 0)
    return AssertionSuccess();
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << expr1 << "\n    Which is: ";
  UniversalPrint(val1, os);
  os << "\n  " << expr2 << "\n    Which is: ";
  UniversalPrint(val2, os);
  return AssertionResult(false, os.str());
}

inline AssertionResult CmpHelperNear(const char* expr1, const char* expr2,
                                     const char* abs_error_expr, double val1,
                                     double val2, double abs_error) {
  const double diff = std::fabs(val1 - val2);
  if (diff <= abs_error) return AssertionSuccess();
  std::ostringstream os;
  os << "The difference between " << expr1 << " and " << expr2 << " is "
     << diff << ", which exceeds " << abs_error_expr << ", where\n"
     << expr1 << " evaluates to " << val1 << ",\n"
     << expr2 << " evaluates to " << val2 << ", and\n"
     << abs_error_expr << " evaluates to " << abs_error << ".";
  return AssertionResult(false, os.str());
}

// GoogleTest-compatible 4-ULP floating point comparison.
inline AssertionResult CmpHelperDoubleEQ(const char* expr1, const char* expr2,
                                         double val1, double val2) {
  const auto to_biased = [](double d) -> std::uint64_t {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    const std::uint64_t sign_mask = std::uint64_t{1} << 63;
    return (bits & sign_mask) ? ~bits + 1 : bits | sign_mask;
  };
  bool equal = false;
  if (std::isnan(val1) || std::isnan(val2)) {
    equal = false;
  } else {
    const std::uint64_t b1 = to_biased(val1);
    const std::uint64_t b2 = to_biased(val2);
    const std::uint64_t ulp_diff = b1 >= b2 ? b1 - b2 : b2 - b1;
    equal = ulp_diff <= 4;
  }
  if (equal) return AssertionSuccess();
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << expr1
     << "\n    Which is: " << val1 << "\n  " << expr2
     << "\n    Which is: " << val2;
  return AssertionResult(false, os.str());
}

inline AssertionResult BoolResult(const char* expr, bool value, bool expected) {
  if (value == expected) return AssertionSuccess();
  std::ostringstream os;
  os << "Value of: " << expr << "\n  Actual: " << (value ? "true" : "false")
     << "\nExpected: " << (expected ? "true" : "false");
  return AssertionResult(false, os.str());
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test base class
// ---------------------------------------------------------------------------
class Test {
 public:
  virtual ~Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}
};

// ---------------------------------------------------------------------------
// Parameterized tests
// ---------------------------------------------------------------------------
template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& p, std::size_t i) : param(p), index(i) {}
  T param;
  std::size_t index;
};

template <typename T>
class WithParamInterface {
 public:
  using ParamType = T;
  virtual ~WithParamInterface() = default;
  static const ParamType& GetParam() {
    if (parameter_ == nullptr) {
      std::cerr << "GetParam() called outside a parameterized test"
                << std::endl;
      std::abort();
    }
    return *parameter_;
  }
  // Internal: set by the instantiation machinery before each construction.
  static void SetParam(const ParamType* p) { parameter_ = p; }

 private:
  static inline const ParamType* parameter_ = nullptr;
};

template <typename T>
class TestWithParam : public Test, public WithParamInterface<T> {};

// --- Generators -----------------------------------------------------------
template <typename T>
struct ParamGenerator {
  std::vector<T> values;
};

namespace internal {

template <typename... Ts>
struct ValueArray {
  std::tuple<Ts...> values;
  template <typename T>
  operator ParamGenerator<T>() const {  // NOLINT(google-explicit-constructor)
    ParamGenerator<T> gen;
    std::apply(
        [&gen](const Ts&... vs) {
          (gen.values.push_back(static_cast<T>(vs)), ...);
        },
        values);
    return gen;
  }
};

template <typename C>
struct ValuesInHolder {
  std::vector<typename C::value_type> values;
  template <typename T>
  operator ParamGenerator<T>() const {  // NOLINT(google-explicit-constructor)
    ParamGenerator<T> gen;
    for (const auto& v : values) gen.values.push_back(static_cast<T>(v));
    return gen;
  }
};

template <typename... Gens>
struct CartesianProductHolder {
  std::tuple<Gens...> generators;

  template <typename... Ts>
  operator ParamGenerator<std::tuple<Ts...>>() const {  // NOLINT
    static_assert(sizeof...(Ts) == sizeof...(Gens),
                  "Combine() arity must match the tuple parameter arity");
    std::tuple<ParamGenerator<Ts>...> converted =
        ConvertAll<Ts...>(std::index_sequence_for<Ts...>{});
    ParamGenerator<std::tuple<Ts...>> out;
    // Accumulate via tuple_cat so parameter types need not be
    // default-constructible.
    Product<0, Ts...>(converted, std::tuple<>{}, out.values);
    return out;
  }

 private:
  template <typename... Ts, std::size_t... Is>
  std::tuple<ParamGenerator<Ts>...> ConvertAll(
      std::index_sequence<Is...>) const {
    return {static_cast<ParamGenerator<Ts>>(std::get<Is>(generators))...};
  }

  template <std::size_t I, typename... Ts, typename Partial>
  static void Product(const std::tuple<ParamGenerator<Ts>...>& gens,
                      const Partial& partial,
                      std::vector<std::tuple<Ts...>>& out) {
    if constexpr (I == sizeof...(Ts)) {
      out.push_back(partial);
    } else {
      for (const auto& v : std::get<I>(gens).values)
        Product<I + 1, Ts...>(gens, std::tuple_cat(partial, std::make_tuple(v)),
                              out);
    }
  }
};

}  // namespace internal

template <typename... Ts>
internal::ValueArray<Ts...> Values(Ts... values) {
  return {std::make_tuple(values...)};
}

template <typename C>
internal::ValuesInHolder<C> ValuesIn(const C& container) {
  return {std::vector<typename C::value_type>(std::begin(container),
                                              std::end(container))};
}

template <typename T, std::size_t N>
auto ValuesIn(const T (&array)[N]) {
  internal::ValuesInHolder<std::vector<T>> holder;
  holder.values.assign(array, array + N);
  return holder;
}

template <typename ForwardIt>
auto ValuesIn(ForwardIt begin, ForwardIt end) {
  using T = typename std::iterator_traits<ForwardIt>::value_type;
  internal::ValuesInHolder<std::vector<T>> holder;
  holder.values.assign(begin, end);
  return holder;
}

template <typename... Gens>
internal::CartesianProductHolder<Gens...> Combine(Gens... gens) {
  return {std::make_tuple(gens...)};
}

namespace internal {

// Per-fixture registry holding TEST_P patterns and INSTANTIATE_ generators;
// expanded into concrete TestEntry objects lazily at RUN_ALL_TESTS so
// declaration order between the two macros does not matter.
template <typename SuiteClass>
class ParamRegistry {
 public:
  using ParamType = typename SuiteClass::ParamType;
  using Factory = Test* (*)(const ParamType&);
  using Namer = std::function<std::string(const TestParamInfo<ParamType>&)>;

  static ParamRegistry& Instance() {
    static ParamRegistry registry;
    return registry;
  }

  int AddPattern(const char* suite_name, const char* test_name,
                 Factory factory) {
    EnsureExpanderRegistered();
    suite_name_ = suite_name;
    patterns_.push_back({test_name, factory});
    return 0;
  }

  template <typename Gen>
  int AddInstantiation(const char* prefix, const Gen& gen) {
    return AddInstantiation(prefix, gen, Namer{});
  }

  template <typename Gen>
  int AddInstantiation(const char* prefix, const Gen& gen, Namer namer) {
    EnsureExpanderRegistered();
    ParamGenerator<ParamType> converted = gen;
    instantiations_.push_back(
        {prefix,
         std::make_shared<std::vector<ParamType>>(std::move(converted.values)),
         std::move(namer)});
    return 0;
  }

 private:
  struct Pattern {
    std::string test_name;
    Factory factory;
  };
  struct Instantiation {
    std::string prefix;
    std::shared_ptr<std::vector<ParamType>> values;
    Namer namer;
  };

  void EnsureExpanderRegistered() {
    if (expander_registered_) return;
    expander_registered_ = true;
    UnitTestImpl::Get().AddExpander([this] { Expand(); });
  }

  void Expand() {
    for (const auto& inst : instantiations_) {
      for (const auto& pattern : patterns_) {
        for (std::size_t i = 0; i < inst.values->size(); ++i) {
          const std::string param_name =
              inst.namer
                  ? inst.namer(TestParamInfo<ParamType>((*inst.values)[i], i))
                  : std::to_string(i);
          TestEntry entry;
          entry.suite_name = inst.prefix + "/" + suite_name_;
          entry.test_name = pattern.test_name + "/" + param_name;
          // The shared_ptr keeps the parameter vector alive for the whole
          // run; SetParam points the fixture at the value pre-construction.
          auto values = inst.values;
          auto factory = pattern.factory;
          entry.factory = [values, factory, i]() -> Test* {
            SuiteClass::SetParam(&(*values)[i]);
            return factory((*values)[i]);
          };
          UnitTestImpl::Get().AddTest(std::move(entry));
        }
      }
    }
  }

  std::string suite_name_;
  std::vector<Pattern> patterns_;
  std::vector<Instantiation> instantiations_;
  bool expander_registered_ = false;
};

inline int RegisterTest(const char* suite, const char* name,
                        Test* (*factory)()) {
  TestEntry entry;
  entry.suite_name = suite;
  entry.test_name = name;
  entry.factory = factory;
  UnitTestImpl::Get().AddTest(std::move(entry));
  return 0;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Init / run
// ---------------------------------------------------------------------------
inline void InitGoogleTest(int* argc, char** argv) {
  auto& impl = internal::UnitTestImpl::Get();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gtest_filter=", 0) == 0) {
      impl.filter_ = arg.substr(std::strlen("--gtest_filter="));
    } else if (arg == "--gtest_list_tests") {
      impl.list_tests_ = true;
    } else if (arg.rfind("--gtest_color", 0) == 0 ||
               arg.rfind("--gtest_brief", 0) == 0 ||
               arg.rfind("--gtest_output", 0) == 0 ||
               arg == "--gtest_also_run_disabled_tests") {
      // Accepted and ignored: minigtest always prints plain full output.
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void InitGoogleTest() {}

inline int RunAllTests() {
  auto& impl = internal::UnitTestImpl::Get();
  impl.ExpandParameterizedTests();

  if (impl.list_tests_) {
    std::string last_suite;
    for (const auto& t : impl.tests()) {
      if (!internal::FilterMatches(impl.filter_, t.full_name())) continue;
      if (t.suite_name != last_suite) {
        std::cout << t.suite_name << "." << std::endl;
        last_suite = t.suite_name;
      }
      std::cout << "  " << t.test_name << std::endl;
    }
    return 0;
  }

  std::vector<const internal::TestEntry*> selected;
  for (const auto& t : impl.tests())
    if (internal::FilterMatches(impl.filter_, t.full_name()))
      selected.push_back(&t);

  std::cout << "[==========] Running " << selected.size() << " tests."
            << std::endl;
  std::vector<std::string> failed;
  std::size_t skipped = 0;
  for (const auto* t : selected) {
    std::cout << "[ RUN      ] " << t->full_name() << std::endl;
    impl.current_test_failed_ = false;
    impl.current_test_skipped_ = false;
    impl.trace_stack_.clear();
    try {
      std::unique_ptr<Test> test(t->factory());
      test->SetUp();
      // GoogleTest contract: a fatal failure (or skip) in SetUp suppresses
      // the test body; TearDown always runs.
      if (!impl.current_test_failed_ && !impl.current_test_skipped_)
        test->TestBody();
      test->TearDown();
    } catch (const std::exception& e) {
      impl.RecordFailure("<unknown>", 0,
                         std::string("uncaught exception: ") + e.what());
    } catch (...) {
      impl.RecordFailure("<unknown>", 0, "uncaught non-std exception");
    }
    if (impl.current_test_failed_) {
      failed.push_back(t->full_name());
      std::cout << "[  FAILED  ] " << t->full_name() << std::endl;
    } else if (impl.current_test_skipped_) {
      ++skipped;
      std::cout << "[  SKIPPED ] " << t->full_name() << std::endl;
    } else {
      std::cout << "[       OK ] " << t->full_name() << std::endl;
    }
  }
  std::cout << "[==========] " << selected.size() << " tests ran." << std::endl;
  std::cout << "[  PASSED  ] " << (selected.size() - failed.size() - skipped)
            << " tests." << std::endl;
  if (skipped > 0)
    std::cout << "[  SKIPPED ] " << skipped << " tests." << std::endl;
  if (!failed.empty()) {
    std::cout << "[  FAILED  ] " << failed.size() << " tests, listed below:"
              << std::endl;
    for (const auto& name : failed)
      std::cout << "[  FAILED  ] " << name << std::endl;
  }
  return failed.empty() ? 0 : 1;
}

}  // namespace testing

inline int RUN_ALL_TESTS() { return ::testing::RunAllTests(); }

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------
#define GTEST_CONCAT_IMPL_(a, b) a##b
#define GTEST_CONCAT_(a, b) GTEST_CONCAT_IMPL_(a, b)
#define GTEST_TEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define GTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                          \
  case 0:                             \
  default:

#define GTEST_MESSAGE_AT_(file, line, message, type)                   \
  ::testing::internal::AssertHelper(type, file, line, message) =       \
      ::testing::Message()

#define GTEST_NONFATAL_FAILURE_(message)                         \
  GTEST_MESSAGE_AT_(__FILE__, __LINE__, message,                 \
                    ::testing::internal::AssertHelper::kNonFatal)

#define GTEST_FATAL_FAILURE_(message)                                 \
  return GTEST_MESSAGE_AT_(__FILE__, __LINE__, message,               \
                           ::testing::internal::AssertHelper::kFatal)

#define GTEST_ASSERT_(expression, on_failure)                   \
  GTEST_AMBIGUOUS_ELSE_BLOCKER_                                 \
  if (::testing::AssertionResult gtest_ar = (expression))       \
    ;                                                           \
  else                                                          \
    on_failure(gtest_ar.failure_message())

#define TEST(suite, name)                                                    \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public ::testing::Test {       \
   public:                                                                   \
    void TestBody() override;                                                \
    static ::testing::Test* Create() {                                       \
      return new GTEST_TEST_CLASS_NAME_(suite, name)();                      \
    }                                                                        \
                                                                             \
   private:                                                                  \
    static inline const int gtest_registering_dummy_ =                       \
        ::testing::internal::RegisterTest(#suite, #name, &Create);           \
  };                                                                         \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST_F(fixture, name)                                                \
  class GTEST_TEST_CLASS_NAME_(fixture, name) : public fixture {             \
   public:                                                                   \
    void TestBody() override;                                                \
    static ::testing::Test* Create() {                                       \
      return new GTEST_TEST_CLASS_NAME_(fixture, name)();                    \
    }                                                                        \
                                                                             \
   private:                                                                  \
    static inline const int gtest_registering_dummy_ =                       \
        ::testing::internal::RegisterTest(#fixture, #name, &Create);         \
  };                                                                         \
  void GTEST_TEST_CLASS_NAME_(fixture, name)::TestBody()

#define TEST_P(suite, name)                                                  \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public suite {                 \
   public:                                                                   \
    void TestBody() override;                                                \
    static ::testing::Test* Create(const suite::ParamType&) {                \
      return new GTEST_TEST_CLASS_NAME_(suite, name)();                      \
    }                                                                        \
                                                                             \
   private:                                                                  \
    static inline const int gtest_registering_dummy_ =                       \
        ::testing::internal::ParamRegistry<suite>::Instance().AddPattern(    \
            #suite, #name, &Create);                                         \
  };                                                                         \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                      \
  static const int GTEST_CONCAT_(gtest_instantiation_dummy_, __LINE__) =  \
      ::testing::internal::ParamRegistry<suite>::Instance()               \
          .AddInstantiation(#prefix, __VA_ARGS__)

// Legacy alias kept for sources written against older GoogleTest.
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

// --- Boolean --------------------------------------------------------------
#define EXPECT_TRUE(condition)                                               \
  GTEST_ASSERT_(::testing::internal::BoolResult(#condition,                  \
                                                static_cast<bool>(condition),\
                                                true),                       \
                GTEST_NONFATAL_FAILURE_)
#define EXPECT_FALSE(condition)                                              \
  GTEST_ASSERT_(::testing::internal::BoolResult(#condition,                  \
                                                static_cast<bool>(condition),\
                                                false),                      \
                GTEST_NONFATAL_FAILURE_)
#define ASSERT_TRUE(condition)                                               \
  GTEST_ASSERT_(::testing::internal::BoolResult(#condition,                  \
                                                static_cast<bool>(condition),\
                                                true),                       \
                GTEST_FATAL_FAILURE_)
#define ASSERT_FALSE(condition)                                              \
  GTEST_ASSERT_(::testing::internal::BoolResult(#condition,                  \
                                                static_cast<bool>(condition),\
                                                false),                      \
                GTEST_FATAL_FAILURE_)

// --- Comparisons ----------------------------------------------------------
#define MINIGTEST_CMP_(helper, v1, v2, on_failure)                        \
  GTEST_ASSERT_(::testing::internal::CmpHelper##helper(#v1, #v2, v1, v2), \
                on_failure)

#define EXPECT_EQ(v1, v2) MINIGTEST_CMP_(EQ, v1, v2, GTEST_NONFATAL_FAILURE_)
#define EXPECT_NE(v1, v2) MINIGTEST_CMP_(NE, v1, v2, GTEST_NONFATAL_FAILURE_)
#define EXPECT_GT(v1, v2) MINIGTEST_CMP_(GT, v1, v2, GTEST_NONFATAL_FAILURE_)
#define EXPECT_GE(v1, v2) MINIGTEST_CMP_(GE, v1, v2, GTEST_NONFATAL_FAILURE_)
#define EXPECT_LT(v1, v2) MINIGTEST_CMP_(LT, v1, v2, GTEST_NONFATAL_FAILURE_)
#define EXPECT_LE(v1, v2) MINIGTEST_CMP_(LE, v1, v2, GTEST_NONFATAL_FAILURE_)
#define ASSERT_EQ(v1, v2) MINIGTEST_CMP_(EQ, v1, v2, GTEST_FATAL_FAILURE_)
#define ASSERT_NE(v1, v2) MINIGTEST_CMP_(NE, v1, v2, GTEST_FATAL_FAILURE_)
#define ASSERT_GT(v1, v2) MINIGTEST_CMP_(GT, v1, v2, GTEST_FATAL_FAILURE_)
#define ASSERT_GE(v1, v2) MINIGTEST_CMP_(GE, v1, v2, GTEST_FATAL_FAILURE_)
#define ASSERT_LT(v1, v2) MINIGTEST_CMP_(LT, v1, v2, GTEST_FATAL_FAILURE_)
#define ASSERT_LE(v1, v2) MINIGTEST_CMP_(LE, v1, v2, GTEST_FATAL_FAILURE_)

#define EXPECT_STREQ(v1, v2) \
  GTEST_ASSERT_(::testing::internal::CmpHelperSTREQ(#v1, #v2, v1, v2), \
                GTEST_NONFATAL_FAILURE_)
#define ASSERT_STREQ(v1, v2) \
  GTEST_ASSERT_(::testing::internal::CmpHelperSTREQ(#v1, #v2, v1, v2), \
                GTEST_FATAL_FAILURE_)

#define EXPECT_NEAR(v1, v2, abs_error)                                    \
  GTEST_ASSERT_(::testing::internal::CmpHelperNear(#v1, #v2, #abs_error,  \
                                                   v1, v2, abs_error),    \
                GTEST_NONFATAL_FAILURE_)
#define ASSERT_NEAR(v1, v2, abs_error)                                    \
  GTEST_ASSERT_(::testing::internal::CmpHelperNear(#v1, #v2, #abs_error,  \
                                                   v1, v2, abs_error),    \
                GTEST_FATAL_FAILURE_)

#define EXPECT_DOUBLE_EQ(v1, v2)                                          \
  GTEST_ASSERT_(::testing::internal::CmpHelperDoubleEQ(#v1, #v2, v1, v2), \
                GTEST_NONFATAL_FAILURE_)
#define ASSERT_DOUBLE_EQ(v1, v2)                                          \
  GTEST_ASSERT_(::testing::internal::CmpHelperDoubleEQ(#v1, #v2, v1, v2), \
                GTEST_FATAL_FAILURE_)
#define EXPECT_FLOAT_EQ(v1, v2) EXPECT_NEAR(v1, v2, 1e-5)

// --- Exceptions -----------------------------------------------------------
#define MINIGTEST_TEST_THROW_(statement, expected_exception, fail)           \
  GTEST_AMBIGUOUS_ELSE_BLOCKER_                                              \
  if (::std::string gtest_msg_value; true) {                                 \
    bool gtest_caught_expected = false;                                      \
    try {                                                                    \
      { statement; }                                                         \
    } catch (expected_exception const&) {                                    \
      gtest_caught_expected = true;                                          \
    } catch (...) {                                                          \
      gtest_msg_value = "Expected: " #statement                              \
                        " throws an exception of type " #expected_exception  \
                        ".\n  Actual: it throws a different type.";          \
      goto GTEST_CONCAT_(gtest_label_testthrow_, __LINE__);                  \
    }                                                                        \
    if (!gtest_caught_expected) {                                            \
      gtest_msg_value = "Expected: " #statement                              \
                        " throws an exception of type " #expected_exception  \
                        ".\n  Actual: it throws nothing.";                   \
      goto GTEST_CONCAT_(gtest_label_testthrow_, __LINE__);                  \
    }                                                                        \
  } else                                                                     \
    GTEST_CONCAT_(gtest_label_testthrow_, __LINE__)                          \
        : fail(gtest_msg_value.c_str())

#define MINIGTEST_TEST_NO_THROW_(statement, fail)                            \
  GTEST_AMBIGUOUS_ELSE_BLOCKER_                                              \
  if (::std::string gtest_msg_value; true) {                                 \
    try {                                                                    \
      { statement; }                                                         \
    } catch (const ::std::exception& gtest_e) {                              \
      gtest_msg_value = ::std::string("Expected: " #statement                \
                                      " doesn't throw an exception.\n"       \
                                      "  Actual: it throws ") +              \
                        gtest_e.what();                                      \
      goto GTEST_CONCAT_(gtest_label_testnothrow_, __LINE__);                \
    } catch (...) {                                                          \
      gtest_msg_value = "Expected: " #statement                              \
                        " doesn't throw an exception.\n"                     \
                        "  Actual: it throws.";                              \
      goto GTEST_CONCAT_(gtest_label_testnothrow_, __LINE__);                \
    }                                                                        \
  } else                                                                     \
    GTEST_CONCAT_(gtest_label_testnothrow_, __LINE__)                        \
        : fail(gtest_msg_value.c_str())

#define EXPECT_THROW(statement, expected_exception) \
  MINIGTEST_TEST_THROW_(statement, expected_exception, GTEST_NONFATAL_FAILURE_)
#define ASSERT_THROW(statement, expected_exception) \
  MINIGTEST_TEST_THROW_(statement, expected_exception, GTEST_FATAL_FAILURE_)
#define EXPECT_NO_THROW(statement) \
  MINIGTEST_TEST_NO_THROW_(statement, GTEST_NONFATAL_FAILURE_)
#define ASSERT_NO_THROW(statement) \
  MINIGTEST_TEST_NO_THROW_(statement, GTEST_FATAL_FAILURE_)

// --- Explicit success / failure / skip ------------------------------------
#define ADD_FAILURE() GTEST_NONFATAL_FAILURE_("Failed")
#define FAIL() GTEST_FATAL_FAILURE_("Failed")
#define SUCCEED() static_cast<void>(0)
#define GTEST_SKIP() \
  return ::testing::internal::SkipHelper() = ::testing::Message()

#define SCOPED_TRACE(message)                                          \
  const ::testing::internal::ScopedTraceHelper GTEST_CONCAT_(          \
      gtest_trace_, __LINE__)(__FILE__, __LINE__,                      \
                              ::testing::Message() << (message))

#endif  // MINIGTEST_GTEST_GTEST_H_
